(* See pool.mli for the contract.  Layout of this file:
     - outcome/jobs plumbing and the shared per-task runner
     - the serial backend (also the reference semantics)
     - the fork backend: wire protocol, worker loop, parent multiplexer
     - the domain backend
     - backend selection and the public entry points *)

type jobs = Auto | Jobs of int

type 'a outcome =
  | Done of 'a
  | Failed of string
  | Crashed of string
  | Timed_out

exception Nested

let outcome_to_string = function
  | Done _ -> "done"
  | Failed msg -> "failed: " ^ msg
  | Crashed msg -> "crashed: " ^ msg
  | Timed_out -> "timed out"

let auto_jobs () = max 1 (Par_compat.recommended_worker_count ())

let jobs_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Auto
  | s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Jobs n)
      | _ -> Error (Printf.sprintf "bad jobs value %S (want auto or N >= 1)" s))

let jobs_to_string = function
  | Auto -> "auto"
  | Jobs n -> string_of_int n

let resolve = function Auto -> auto_jobs () | Jobs n -> max 1 n

(* One pool at a time: grids parallelize at a single level.  Worker
   children inherit a positive depth, so a task calling [run] is caught
   in the child too. *)
let depth = ref 0

exception Task_timeout

(* Run [f] with a per-task wall-clock limit, delivered as SIGALRM by an
   interval timer and turned into an exception.  OCaml delivers signals
   at allocation points, which every real task here reaches constantly;
   a task that doesn't is caught by the parent's kill backstop. *)
let with_alarm timeout_s f =
  match timeout_s with
  | None -> f ()
  | Some _ when not Sys.unix -> f ()
  | Some t ->
      let old =
        Sys.signal Sys.sigalrm
          (Sys.Signal_handle (fun _ -> raise Task_timeout))
      in
      let clear () =
        ignore
          (Unix.setitimer Unix.ITIMER_REAL
             { Unix.it_value = 0.0; it_interval = 0.0 });
        Sys.set_signal Sys.sigalrm old
      in
      Fun.protect ~finally:clear (fun () ->
          ignore
            (Unix.setitimer Unix.ITIMER_REAL
               { Unix.it_value = t; it_interval = 0.0 });
          f ())

let run_task ~timeout_s f =
  match with_alarm timeout_s f with
  | v -> Done v
  | exception Task_timeout -> Timed_out
  | exception Nested -> Failed "nested Pool.run rejected"
  | exception e -> Failed (Printexc.to_string e)

(* ---------------- serial backend ---------------- *)

let run_serial ~timeout_s tasks =
  Array.to_list (Array.map (fun f -> run_task ~timeout_s f) tasks)

(* ---------------- fork backend ---------------- *)

(* Worker -> parent messages.  Results and telemetry ride as nested
   marshal blobs so the outer [wire] type stays monomorphic. *)
type wire =
  | W_start of int  (* about to run task [i] *)
  | W_done of int * string * string
      (* task [i]: marshalled ['a outcome], marshalled
         [Metrics.snapshot * Trace.events] recorded while it ran *)

(* Frames on the pipe: 8-byte big-endian length, then the marshalled
   message.  Explicit framing (rather than Marshal.from_channel) lets the
   parent multiplex readable pipes with select and never block on a
   half-arrived message. *)

let rec write_all fd b pos len =
  if len > 0 then
    match Unix.write fd b pos len with
    | n -> write_all fd b (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b pos len

let write_frame fd payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int64_be b 0 (Int64.of_int len);
  Bytes.blit_string payload 0 b 8 len;
  write_all fd b 0 (8 + len)

let flush_std () =
  Format.pp_print_flush Format.std_formatter ();
  Format.pp_print_flush Format.err_formatter ();
  (try flush stdout with Sys_error _ -> ());
  try flush stderr with Sys_error _ -> ()

(* The worker: run my share of tasks in order, shipping each result with
   the metrics delta and trace spans recorded while it ran. *)
let worker_main ~timeout_s ~(tasks : (unit -> 'a) array) ~indices wfd =
  let send msg = write_frame wfd (Marshal.to_string (msg : wire) []) in
  let m_base = ref (Metrics.snapshot ()) in
  let t_base = ref (Trace.mark ()) in
  List.iter
    (fun i ->
      send (W_start i);
      let outcome = run_task ~timeout_s tasks.(i) in
      let blob =
        match Marshal.to_string (outcome : 'a outcome) [] with
        | b -> b
        | exception e ->
            (* e.g. a task result containing a closure *)
            Marshal.to_string
              (Failed ("unmarshalable task result: " ^ Printexc.to_string e)
                : 'a outcome)
              []
      in
      let obs =
        Marshal.to_string (Metrics.delta ~since:!m_base, Trace.since !t_base) []
      in
      m_base := Metrics.snapshot ();
      t_base := Trace.mark ();
      send (W_done (i, blob, obs)))
    indices

type worker = {
  slot : int;  (* stable worker id; trace track is slot + 2 *)
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received, not yet parsed into frames *)
  mutable pending : int list;  (* assigned indices with no result yet *)
  mutable current : int option;  (* started but not finished *)
  mutable started_at : float;
  mutable kill_mark : int option;  (* task we killed the worker over *)
}

let spawn_worker ~timeout_s ~tasks ~slot indices =
  (* Anything buffered here would be duplicated by the child's stdio,
     and the child skips at_exit (Unix._exit), so flush both ways. *)
  flush_std ();
  let rfd, wfd = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      (try
         Unix.close rfd;
         worker_main ~timeout_s ~tasks ~indices wfd;
         Unix.close wfd
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close wfd;
      {
        slot;
        pid;
        fd = rfd;
        buf = Buffer.create 4096;
        pending = indices;
        current = None;
        started_at = Unix.gettimeofday ();
        kill_mark = None;
      }

let status_to_string = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with status %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

(* Parse every complete frame sitting in [w.buf]. *)
let process_frames w handle =
  let b = Buffer.contents w.buf in
  let len = String.length b in
  let pos = ref 0 in
  let progressing = ref true in
  while !progressing do
    if len - !pos >= 8 then begin
      let flen = Int64.to_int (String.get_int64_be b !pos) in
      if len - !pos - 8 >= flen then begin
        handle (Marshal.from_string (String.sub b (!pos + 8) flen) 0 : wire);
        pos := !pos + 8 + flen
      end
      else progressing := false
    end
    else progressing := false
  done;
  if !pos > 0 then begin
    let rest = String.sub b !pos (len - !pos) in
    Buffer.clear w.buf;
    Buffer.add_string w.buf rest
  end

let run_forked ~timeout_s ~jobs (tasks : (unit -> 'a) array) =
  let n = Array.length tasks in
  let results : 'a outcome option array = Array.make n None in
  (* Deterministic stride assignment: worker k gets tasks k, k+jobs, ...
     Assignment never affects results (tasks are independent and
     individually seeded); it only shapes load balance. *)
  let stride k = List.filter (fun i -> i mod jobs = k) (List.init n Fun.id) in
  let workers = ref [] in
  let spawn ~slot indices =
    workers := spawn_worker ~timeout_s ~tasks ~slot indices :: !workers
  in
  let handle w = function
    | W_start i ->
        w.current <- Some i;
        w.started_at <- Unix.gettimeofday ()
    | W_done (i, blob, obs) ->
        results.(i) <- Some (Marshal.from_string blob 0 : 'a outcome);
        (let snap, events =
           (Marshal.from_string obs 0 : Metrics.snapshot * Trace.events)
         in
         Metrics.merge snap;
         Trace.absorb ~tid:(w.slot + 2) events);
        w.current <- None;
        w.pending <- List.filter (fun j -> j <> i) w.pending
  in
  (* A worker hit EOF: reap it and, if it died mid-share, record the
     fatal task's outcome and hand the rest of its share to a
     replacement.  A task the parent killed over its deadline reports
     Timed_out; any other death is Crashed. *)
  let reap w =
    Unix.close w.fd;
    let status =
      match Unix.waitpid [] w.pid with
      | _, status -> status_to_string status
      | exception Unix.Unix_error _ -> "worker unreachable"
    in
    if w.pending <> [] then begin
      match w.kill_mark with
      | Some i when not (List.mem i w.pending) ->
          (* We killed it over task [i], but [i] had in fact finished just
             before the kill landed: nothing failed, hand the rest on. *)
          spawn ~slot:w.slot w.pending
      | km ->
          let fatal, outcome =
            match km with
            | Some i -> (i, Timed_out)
            | None -> (
                match w.current with
                | Some i -> (i, Crashed status)
                | None ->
                    (List.hd w.pending, Crashed (status ^ " between tasks")))
          in
          results.(fatal) <- Some outcome;
          (match List.filter (fun j -> j <> fatal) w.pending with
          | [] -> ()
          | rest -> spawn ~slot:w.slot rest)
    end
  in
  let watchdog () =
    match timeout_s with
    | None -> ()
    | Some t ->
        let deadline = t +. Float.max 1.0 (0.5 *. t) in
        let now = Unix.gettimeofday () in
        List.iter
          (fun w ->
            match w.current with
            | Some i
              when w.kill_mark = None && now -. w.started_at > deadline ->
                (* The worker's own alarm should have fired; it is wedged
                   somewhere signals cannot reach.  Kill it. *)
                w.kill_mark <- Some i;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ())
          !workers
  in
  let cleanup () =
    (* Only on an exceptional exit: don't leak children or zombies. *)
    List.iter
      (fun w ->
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close w.fd with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
      !workers
  in
  match
    for k = 0 to jobs - 1 do
      match stride k with [] -> () | indices -> spawn ~slot:k indices
    done;
    let chunk = Bytes.create 65536 in
    while !workers <> [] do
      let fds = List.map (fun w -> w.fd) !workers in
      let ready, _, _ =
        match Unix.select fds [] [] 0.5 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.fd == fd) !workers with
          | None -> ()
          | Some w -> (
              match Unix.read fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  (* EOF: parse any complete tail frames, then reap. *)
                  process_frames w (handle w);
                  workers := List.filter (fun x -> x != w) !workers;
                  reap w
              | r ->
                  Buffer.add_subbytes w.buf chunk 0 r;
                  process_frames w (handle w)
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()))
        ready;
      watchdog ()
    done
  with
  | () ->
      Array.to_list
        (Array.map
           (function
             | Some o -> o
             | None -> Failed "pool: task result lost")
           results)
  | exception e ->
      cleanup ();
      raise e

(* ---------------- domain backend ---------------- *)

let run_domains ~timeout_s ~jobs (tasks : (unit -> 'a) array) =
  (* Domains cannot be killed, so per-task timeouts are not enforceable
     here; tasks run to completion.  Metrics/Trace recording is safe:
     both registries lock internally. *)
  ignore timeout_s;
  let n = Array.length tasks in
  let results = Array.make n (Failed "pool: task not run") in
  let next = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else results.(i) <- run_task ~timeout_s:None tasks.(i)
    done
  in
  let helpers = List.init (jobs - 1) (fun _ -> Par_compat.spawn worker) in
  worker ();
  List.iter (fun h -> ignore (Par_compat.join h)) helpers;
  Array.to_list results

(* ---------------- selection and entry points ---------------- *)

type backend = Serial | Forked | Domains

let backend () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "PSD_POOL_BACKEND") with
  | Some "serial" -> Serial
  | Some "fork" -> Forked
  | Some "domains" -> if Par_compat.domains_available then Domains else Serial
  | _ ->
      (* Fork wherever it exists: it is what provides crash containment
         and kill-based timeouts.  Domains are the fallback (Windows). *)
      if Sys.unix then Forked
      else if Par_compat.domains_available then Domains
      else Serial

let run ?timeout_s ?(jobs = Auto) tasks =
  if !depth > 0 then raise Nested;
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  if n = 0 then []
  else begin
    incr depth;
    Fun.protect
      ~finally:(fun () -> Stdlib.decr depth)
      (fun () ->
        let j = min n (resolve jobs) in
        if j <= 1 then run_serial ~timeout_s tasks
        else
          match backend () with
          | Forked -> run_forked ~timeout_s ~jobs:j tasks
          | Domains -> run_domains ~timeout_s ~jobs:j tasks
          | Serial -> run_serial ~timeout_s tasks)
  end

let map ?timeout_s ?jobs f items =
  run ?timeout_s ?jobs (List.map (fun x () -> f x) items)

let backend_name () =
  match backend () with
  | Serial -> "serial"
  | Forked -> "fork"
  | Domains -> "domains"
