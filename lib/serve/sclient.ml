(* The serve client: connection plumbing, a seeded load generator, and
   the serial oracle that keeps the daemon honest.

   The load generator replays a *deterministic* request trace — derived
   from a seed through the same `Rng.of_labels` stream discipline the
   compiler uses — so a CI smoke run and a local repro issue the exact
   same requests.  Every digest the daemon returns is checked against an
   in-process serial build of the same (workload, config, version)
   triple: the daemon batches, forks and caches, but a variant is a pure
   function of its triple, so any divergence is a bug, not noise. *)

let src_of fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX path -> "serve daemon at " ^ path
  | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "serve daemon at %s:%d" (Unix.string_of_inet_addr a) p
  | exception Unix.Unix_error _ -> "serve daemon"

let connect_once (addr : Sdaemon.addr) =
  match addr with
  | Sdaemon.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd
  | Sdaemon.Tcp (host, port) ->
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
      fd

(* The daemon signals readiness by the socket accepting connections, so
   startup is a retry loop, not a sleep. *)
let connect ?(retry_for = 10.0) addr =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    match connect_once addr with
    | fd -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let rpc ?max_frame fd (req : Sproto.request) : Sproto.response =
  Sproto.write_all fd (Sproto.encode_request req);
  let src = src_of fd in
  match Sproto.read_frame ?max_frame ~src fd with
  | Some framed -> Sproto.response_of_frame ~src framed
  | None -> failwith (src ^ ": connection closed before reply")

let stats fd =
  match rpc fd (Sproto.Stats { id = 0 }) with
  | Sproto.Stats_reply s -> s
  | r ->
      failwith
        (Printf.sprintf "unexpected reply %d to Stats" (Sproto.response_id r))

let shutdown fd =
  match rpc fd (Sproto.Shutdown { id = 0 }) with
  | Sproto.Bye _ -> ()
  | r ->
      failwith
        (Printf.sprintf "unexpected reply %d to Shutdown" (Sproto.response_id r))

(* ---- seeded request traces ---- *)

(* A trace request re-visits version windows on purpose: revisits are
   where warm-path bugs (stale cache keys, shard eviction races) would
   show up, and they are what a production rotation actually does. *)
let trace ~seed ~workloads ~config ~requests ~versions_per_request
    ~version_space ~want_images =
  let workloads = Array.of_list workloads in
  if Array.length workloads = 0 then
    invalid_arg "Sclient.trace: no workloads";
  List.init requests (fun i ->
      let rng =
        Rng.of_labels seed [ "serve-trace"; string_of_int i ]
      in
      let workload = Rng.choose rng workloads in
      let lo = Rng.int rng (max 1 (version_space - versions_per_request + 1)) in
      {
        Sproto.id = i + 1;
        workload;
        config;
        versions = (lo, lo + versions_per_request - 1);
        want_images;
      })

(* ---- the serial oracle ---- *)

(* Digest of each variant in [lo..hi], built in this process with no
   pool and no daemon — the ground truth the daemon must match. *)
let oracle_digests ~workload ~config ~versions:(lo, hi) =
  let w = Workloads.find workload in
  let config =
    match Config.of_spec config with
    | Ok c -> c
    | Error e -> failwith e
  in
  let compiled = Driver.compile_cached ~name:w.Workload.name w.Workload.source in
  let profile = Driver.train_cached compiled ~args:w.Workload.train_args in
  List.init (hi - lo + 1) (fun i ->
      let image, _ =
        Driver.diversify_linked compiled ~config ~profile ~version:(lo + i)
      in
      Digest.to_hex (Digest.string image.Link.text))

(* ---- load replay ---- *)

type report = {
  requests : int;
  built : int;  (** requests answered [Built] *)
  variants : int;
  shed : int;
  errors : int;
  lowering_runs : int;  (** summed over [Built] replies *)
  store_hits : int;
  store_misses : int;
  digest_mismatches : int;  (** vs the serial oracle, when verified *)
  wall_s : float;
}

let replay ?(verify = false) ?on_built ?max_frame fd reqs =
  let t0 = Unix.gettimeofday () in
  let built = ref 0
  and variants = ref 0
  and shed = ref 0
  and errors = ref 0
  and lowering = ref 0
  and hits = ref 0
  and misses = ref 0
  and mismatches = ref 0 in
  List.iter
    (fun (req : Sproto.build_req) ->
      match rpc ?max_frame fd (Sproto.Build req) with
      | Sproto.Built b ->
          (match on_built with Some f -> f b | None -> ());
          incr built;
          variants := !variants + List.length b.Sproto.variants;
          lowering := !lowering + b.Sproto.lowering_runs;
          hits := !hits + b.Sproto.store_hits;
          misses := !misses + b.Sproto.store_misses;
          if verify then begin
            let expect =
              oracle_digests ~workload:req.Sproto.workload
                ~config:req.Sproto.config ~versions:req.Sproto.versions
            in
            let got =
              List.map (fun (v : Sproto.variant) -> v.Sproto.digest)
                b.Sproto.variants
            in
            if got <> expect then incr mismatches;
            (* An image payload must be loadable and must hash to the
               digest the daemon claimed for it. *)
            List.iter
              (fun (v : Sproto.variant) ->
                match v.Sproto.image with
                | None -> ()
                | Some bytes ->
                    let image =
                      Sproto.image_of_string ~src:"serve reply" bytes
                    in
                    if
                      Digest.to_hex (Digest.string image.Link.text)
                      <> v.Sproto.digest
                    then incr mismatches)
              b.Sproto.variants
          end
      | Sproto.Shed _ -> incr shed
      | Sproto.Error_reply _ -> incr errors
      | Sproto.Stats_reply _ | Sproto.Bye _ ->
          failwith "unexpected control reply to Build")
    reqs;
  {
    requests = List.length reqs;
    built = !built;
    variants = !variants;
    shed = !shed;
    errors = !errors;
    lowering_runs = !lowering;
    store_hits = !hits;
    store_misses = !misses;
    digest_mismatches = !mismatches;
    wall_s = Unix.gettimeofday () -. t0;
  }
