(** The variant-serving daemon.

    One long-running process owns the warm lowering state — the sharded
    content-addressed {!Store}, the driver's program-level memos, the
    trained profiles — and answers {!Sproto.Build} requests with
    freshly-seeded variant images.  Requests are admitted into a
    {e bounded} queue (arrivals beyond [queue_cap] are shed with a
    {!Sproto.Shed} response, never buffered without bound), drained in
    batches, prepared serially through the driver caches, and fanned out
    per-version through one {!Pool.run} per batch.

    Variants are a pure function of (workload, config, version): digests
    are byte-identical to an in-process serial build at every [-j], a
    property the serve smoke test and the bench verify against a serial
    oracle.

    Metrics: [serve.requests], [serve.built_variants], [serve.shed],
    [serve.errors], [serve.connections] (counters),
    [serve.queue_depth] (histogram, observed at each admission), plus
    the store's [obj.store.hit/miss/evict].  Each batch runs inside a
    ["serve.batch"] trace span. *)

type addr = Unix_sock of string | Tcp of string * int

val addr_of_spec : string -> (addr, string) result
(** ["tcp:HOST:PORT"], or any other non-empty string as a Unix-domain
    socket path. *)

val addr_to_string : addr -> string

type cfg = {
  addr : addr;
  jobs : Pool.jobs;  (** workers for the per-batch variant fan-out *)
  queue_cap : int;  (** pending Builds beyond this are shed on arrival *)
  batch : int;  (** max Builds prepared + fanned out per pool run *)
  timeout_s : float;
      (** max queue wait before a Build is shed; [<= 0.] disables *)
  max_frame : int;
  max_variants : int;  (** per-request version-range cap *)
  log : string -> unit;
}

val default_cfg : addr -> cfg
(** jobs 1, queue cap 64, batch 16, 30 s timeout, 64 MiB frames, 4096
    variants per request, silent log. *)

val run : ?on_ready:(unit -> unit) -> cfg -> unit
(** Bind, listen (replacing a stale Unix socket file), call [on_ready],
    and serve until a {!Sproto.Shutdown} arrives; requests admitted
    before the shutdown are still answered.  The socket file is removed
    on exit.  Raises [Unix.Unix_error] if the address cannot be
    bound. *)
