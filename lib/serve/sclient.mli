(** The serve client: connection plumbing, a seeded load generator, and
    the serial oracle the daemon's digests are verified against. *)

val connect : ?retry_for:float -> Sdaemon.addr -> Unix.file_descr
(** Connect, retrying [ECONNREFUSED]/[ENOENT] for up to [retry_for]
    seconds (default 10) — the daemon signals readiness by accepting.
    Raises the final [Unix.Unix_error] on exhaustion. *)

val rpc : ?max_frame:int -> Unix.file_descr -> Sproto.request -> Sproto.response
(** One blocking request/response round trip.  Raises [Failure] on a
    malformed reply or a connection closed before the reply. *)

val stats : Unix.file_descr -> Sproto.stats
val shutdown : Unix.file_descr -> unit

val trace :
  seed:int64 ->
  workloads:string list ->
  config:string ->
  requests:int ->
  versions_per_request:int ->
  version_space:int ->
  want_images:bool ->
  Sproto.build_req list
(** A deterministic request trace: request [i] draws its workload and
    its version window (a [versions_per_request]-wide slice of
    [0..version_space-1]) from [Rng.of_labels seed ["serve-trace"; i]].
    Same seed, same trace — in CI and in a local repro. *)

val oracle_digests :
  workload:string -> config:string -> versions:int * int -> string list
(** Serial in-process ground truth: the hex text digest of every variant
    in the (inclusive) version range, built with no pool and no
    daemon. *)

type report = {
  requests : int;
  built : int;  (** requests answered [Built] *)
  variants : int;
  shed : int;
  errors : int;
  lowering_runs : int;  (** summed over [Built] replies *)
  store_hits : int;
  store_misses : int;
  digest_mismatches : int;  (** vs the serial oracle, when verified *)
  wall_s : float;
}

val replay :
  ?verify:bool ->
  ?on_built:(Sproto.built -> unit) ->
  ?max_frame:int ->
  Unix.file_descr ->
  Sproto.build_req list ->
  report
(** Send each request in order and tally the replies; [on_built] sees
    each [Built] reply (e.g. to dump images).  With [verify],
    every [Built] reply's digests are checked against
    {!oracle_digests}, and any returned image payload is decoded and
    re-hashed against its claimed digest. *)
