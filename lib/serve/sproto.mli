(** The serve wire protocol: diversity-as-a-service requests and
    responses, framed for a socket.

    Every message travels as one length-prefixed frame:
    [u32 LE length | Frame(magic "PSDSRV", version, marshalled message,
    MD5 trailer)].  Reusing {!Frame} gives socket messages the same
    precise error taxonomy as on-disk artifacts — bad magic, version
    skew, truncation and corruption each fail with a [Failure] naming
    the peer — and guarantees [Marshal] only ever decodes
    digest-verified bytes.  The length prefix is validated against the
    frame cap {e before} any buffering, so an oversized claim is
    rejected after four bytes. *)

val magic : string
val version : int

val default_max_frame : int
(** 64 MiB — far above any real population response, far below a
    memory-exhaustion attack. *)

type build_req = {
  id : int;  (** echoed in the response, so pipelined clients can match *)
  workload : string;  (** {!Workloads.find} name *)
  config : string;  (** {!Config.of_spec} spec *)
  versions : int * int;  (** inclusive version (seed) range lo..hi *)
  want_images : bool;
      (** return the full framed images, not just their digests *)
}

type request =
  | Build of build_req
  | Stats of { id : int }
  | Shutdown of { id : int }

type variant = {
  version : int;
  digest : string;  (** hex MD5 of the variant's [.text] *)
  image : string option;  (** {!Link.to_bytes} image, when requested *)
}

type built = {
  id : int;
  workload : string;
  config : string;  (** resolved {!Config.name}, not the raw spec *)
  variants : variant list;
  lowering_runs : int;
      (** isel runs this request triggered — 0 on a warm store *)
  store_hits : int;
  store_misses : int;
  queue_depth : int;  (** depth observed when the request was admitted *)
}

type stats = {
  id : int;
  requests : int64;
  built_variants : int64;
  shed : int64;
  errors : int64;
  shards : Store.shard_stats list;
  metrics_json : string;
}

type response =
  | Built of built
  | Stats_reply of stats
  | Shed of { id : int; reason : string }
  | Error_reply of { id : int; message : string }
  | Bye of { id : int }

val request_id : request -> int
val response_id : response -> int

val encode_request : request -> string
(** The full wire representation, length prefix included. *)

val encode_response : response -> string

val request_of_frame : src:string -> string -> request
(** Decode a frame (as returned by {!next_frame} / {!read_frame} — the
    length prefix already stripped).  Raises [Failure] naming [src] on
    bad magic, version skew, truncation or corruption. *)

val response_of_frame : src:string -> string -> response

(** {2 Incremental reading} — the daemon's select loop *)

type reader

val reader : ?max_frame:int -> src:string -> unit -> reader
val feed : reader -> bytes -> int -> unit

val next_frame : reader -> string option
(** The next complete frame, if buffered.  Raises [Failure] on an
    oversized length claim: framing is lost, close the connection. *)

(** {2 Blocking I/O} — the client side *)

val write_all : Unix.file_descr -> string -> unit

val read_frame : ?max_frame:int -> src:string -> Unix.file_descr -> string option
(** One whole frame off a blocking fd; [None] on clean EOF at a frame
    boundary.  Raises [Failure] on mid-frame EOF or an oversized
    claim. *)

(** {2 Image payloads} *)

val image_to_string : Link.image -> string
(** {!Link.to_bytes}: byte-identical to the on-disk image format. *)

val image_of_string : src:string -> string -> Link.image
