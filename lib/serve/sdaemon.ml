(* The variant-serving daemon: diversity as a service.

   One process owns the warm artifact state — the sharded
   content-addressed `Store`, the driver's program-level memos, trained
   profiles — and serves freshly-seeded variant images over a Unix or
   TCP socket.  The event loop is deliberately simple and deterministic:

     1. select over the listener and every live connection;
     2. read whatever arrived, slice it into frames (`Sproto.reader`),
        decode requests;
     3. admit each Build into a *bounded* queue — a request that
        arrives when the queue is full is shed immediately with a
        `Shed` response, never silently dropped and never buffered
        without bound;
     4. drain the queue in batches: requests that waited longer than
        the per-request timeout are shed, the rest are prepared
        serially in the parent (compile + train through the driver's
        caches — this is where a cold store pays its lowering runs and
        a warm store hits), and the per-version variant builds of the
        whole batch are fanned out through one `Exec.Pool` run.

   Variants are a pure function of (workload, config, version), so
   nothing observable depends on batching, worker count, or request
   interleaving — the serve-smoke and the bench verify returned digests
   against a serial oracle at every -j.

   Error containment: a malformed frame answers `Error_reply` on the
   same connection (framing is length-prefixed, so one corrupt frame
   does not poison the next); an oversized length claim closes the
   connection (framing is lost); a dead peer's EPIPE marks the
   connection closed and the loop carries on. *)

type addr = Unix_sock of string | Tcp of string * int

let addr_of_spec spec =
  match String.split_on_char ':' spec with
  | [ "tcp"; host; port ] -> (
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Ok (Tcp (host, p))
      | _ -> Error (Printf.sprintf "bad tcp port in %S" spec))
  | [ path ] when path <> "" -> Ok (Unix_sock path)
  | _ ->
      Error
        (Printf.sprintf "bad socket spec %S (use a unix path or tcp:HOST:PORT)"
           spec)

let addr_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

type cfg = {
  addr : addr;
  jobs : Pool.jobs;  (** workers for the per-batch variant fan-out *)
  queue_cap : int;  (** pending Builds beyond this are shed on arrival *)
  batch : int;  (** max Builds prepared + fanned out per pool run *)
  timeout_s : float;
      (** max queue wait before a Build is shed; [<= 0.] disables *)
  max_frame : int;
  max_variants : int;  (** per-request version-range cap *)
  log : string -> unit;
}

let default_cfg addr =
  {
    addr;
    jobs = Pool.Jobs 1;
    queue_cap = 64;
    batch = 16;
    timeout_s = 30.0;
    max_frame = Sproto.default_max_frame;
    max_variants = 4096;
    log = ignore;
  }

type conn = {
  fd : Unix.file_descr;
  peer : string;
  reader : Sproto.reader;
  mutable alive : bool;
}

type pending = {
  preq : Sproto.build_req;
  pconn : conn;
  enqueued_at : float;
  depth_at_admit : int;
}

type state = {
  cfg : cfg;
  listen_fd : Unix.file_descr;
  queue : pending Queue.t;
  mutable conns : conn list;
  mutable running : bool;
}

let counter_value name = Metrics.counter_value (Metrics.counter name)

let send st conn (resp : Sproto.response) =
  if conn.alive then
    try Sproto.write_all conn.fd (Sproto.encode_response resp)
    with Unix.Unix_error _ | Sys_error _ ->
      st.cfg.log (Printf.sprintf "%s: write failed, closing" conn.peer);
      conn.alive <- false

let shed st conn ~id ~reason =
  Metrics.incr (Metrics.counter "serve.shed");
  st.cfg.log (Printf.sprintf "shed request %d: %s" id reason);
  send st conn (Sproto.Shed { id; reason })

let error_reply st conn ~id ~message =
  Metrics.incr (Metrics.counter "serve.errors");
  st.cfg.log (Printf.sprintf "error on request %d: %s" id message);
  send st conn (Sproto.Error_reply { id; message })

(* ---- request admission ---- *)

let stats_reply ~id : Sproto.response =
  Sproto.Stats_reply
    {
      id;
      requests = counter_value "serve.requests";
      built_variants = counter_value "serve.built_variants";
      shed = counter_value "serve.shed";
      errors = counter_value "serve.errors";
      shards = Store.stats ();
      metrics_json = Metrics.dump_json ();
    }

let admit st conn (req : Sproto.request) =
  match req with
  | Sproto.Stats { id } -> send st conn (stats_reply ~id)
  | Sproto.Shutdown { id } ->
      st.cfg.log "shutdown requested";
      send st conn (Sproto.Bye { id });
      st.running <- false
  | Sproto.Build b ->
      Metrics.incr (Metrics.counter "serve.requests");
      let depth = Queue.length st.queue in
      Metrics.observe (Metrics.histogram "serve.queue_depth") (float_of_int depth);
      if depth >= st.cfg.queue_cap then
        shed st conn ~id:b.Sproto.id
          ~reason:
            (Printf.sprintf "queue full (depth %d >= cap %d)" depth
               st.cfg.queue_cap)
      else
        Queue.add
          {
            preq = b;
            pconn = conn;
            enqueued_at = Unix.gettimeofday ();
            depth_at_admit = depth;
          }
          st.queue

(* ---- batch processing ---- *)

type prep = {
  pend : pending;
  workload : Workload.t;
  config : Config.t;
  compiled : Driver.compiled;
  profile : Profile.t;
  lowering_runs : int;
  store_hits : int;
  store_misses : int;
}

let validate (b : Sproto.build_req) ~max_variants =
  let lo, hi = b.Sproto.versions in
  if lo < 0 || hi < lo then
    Error (Printf.sprintf "bad version range %d..%d" lo hi)
  else if hi - lo + 1 > max_variants then
    Error
      (Printf.sprintf "version range %d..%d asks for %d variants (cap %d)" lo
         hi (hi - lo + 1) max_variants)
  else
    match Workloads.find b.Sproto.workload with
    | w -> (
        match Config.of_spec b.Sproto.config with
        | Ok c -> Ok (w, c)
        | Error e -> Error e)
    | exception Not_found ->
        Error (Printf.sprintf "unknown workload %S" b.Sproto.workload)

(* Compile + train through the driver's caches, charging the stage and
   store work this specific request triggered: the first (cold) request
   for a workload pays its lowering runs, every warm request reads 0 —
   the property the serve-smoke and the CI gate assert. *)
let prepare st (p : pending) =
  match validate p.preq ~max_variants:st.cfg.max_variants with
  | Error msg -> Error (p, msg)
  | Ok (w, config) -> (
      let isel0 = counter_value "machine.isel.runs" in
      let hit0 = counter_value "obj.store.hit" in
      let miss0 = counter_value "obj.store.miss" in
      try
        let compiled =
          Driver.compile_cached ~name:w.Workload.name w.Workload.source
        in
        let profile =
          Driver.train_cached compiled ~args:w.Workload.train_args
        in
        Ok
          {
            pend = p;
            workload = w;
            config;
            compiled;
            profile;
            lowering_runs =
              Int64.to_int
                (Int64.sub (counter_value "machine.isel.runs") isel0);
            store_hits =
              Int64.to_int (Int64.sub (counter_value "obj.store.hit") hit0);
            store_misses =
              Int64.to_int (Int64.sub (counter_value "obj.store.miss") miss0);
          }
      with e -> Error (p, Printexc.to_string e))

let build_variant ~(prep : prep) ~want_images version : Sproto.variant =
  let image, _ =
    Driver.diversify_linked prep.compiled ~config:prep.config
      ~profile:prep.profile ~version
  in
  {
    Sproto.version;
    digest = Digest.to_hex (Digest.string image.Link.text);
    image = (if want_images then Some (Sproto.image_to_string image) else None);
  }

let process_batch st (batch : pending list) =
  Trace.with_span "serve.batch"
    ~args:[ ("requests", string_of_int (List.length batch)) ]
    (fun () ->
      (* Shed what already waited too long: under overload the bounded
         queue fills and the oldest entries go stale together. *)
      let now = Unix.gettimeofday () in
      let live =
        List.filter
          (fun p ->
            let waited = now -. p.enqueued_at in
            if st.cfg.timeout_s > 0.0 && waited > st.cfg.timeout_s then begin
              shed st p.pconn ~id:p.preq.Sproto.id
                ~reason:
                  (Printf.sprintf "timed out in queue (waited %.3fs > %.3fs)"
                     waited st.cfg.timeout_s);
              false
            end
            else true)
          batch
      in
      let prepared = List.map (prepare st) live in
      List.iter
        (function
          | Error (p, msg) ->
              error_reply st p.pconn ~id:p.preq.Sproto.id ~message:msg
          | Ok _ -> ())
        prepared;
      let preps = List.filter_map Result.to_option prepared in
      (* One pool run for the whole batch: every (request, version) is an
         independent task, so a batch of small requests fills the workers
         as well as one big one. *)
      let tasks =
        List.concat_map
          (fun prep ->
            let lo, hi = prep.pend.preq.Sproto.versions in
            let want_images = prep.pend.preq.Sproto.want_images in
            List.init
              (hi - lo + 1)
              (fun i () -> build_variant ~prep ~want_images (lo + i)))
          preps
      in
      let outcomes =
        if tasks = [] then [] else Pool.run ~jobs:st.cfg.jobs tasks
      in
      (* Hand each request its slice of the outcomes, in order. *)
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> failwith "Sdaemon.process_batch: outcome underrun"
        | o :: rest ->
            let taken, left = take (n - 1) rest in
            (o :: taken, left)
      in
      let remaining = ref outcomes in
      List.iter
        (fun prep ->
          let lo, hi = prep.pend.preq.Sproto.versions in
          let mine, rest = take (hi - lo + 1) !remaining in
          remaining := rest;
          let failed =
            List.find_map
              (function Pool.Done _ -> None | o -> Some (Pool.outcome_to_string o))
              mine
          in
          match failed with
          | Some msg ->
              error_reply st prep.pend.pconn ~id:prep.pend.preq.Sproto.id
                ~message:("variant build failed: " ^ msg)
          | None ->
              let variants =
                List.map
                  (function Pool.Done v -> v | _ -> assert false)
                  mine
              in
              Metrics.incr
                ~by:(Int64.of_int (List.length variants))
                (Metrics.counter "serve.built_variants");
              send st prep.pend.pconn
                (Sproto.Built
                   {
                     id = prep.pend.preq.Sproto.id;
                     workload = prep.workload.Workload.name;
                     config = Config.name prep.config;
                     variants;
                     lowering_runs = prep.lowering_runs;
                     store_hits = prep.store_hits;
                     store_misses = prep.store_misses;
                     queue_depth = prep.pend.depth_at_admit;
                   }))
        preps)

let drain st =
  while not (Queue.is_empty st.queue) do
    let batch = ref [] in
    while not (Queue.is_empty st.queue) && List.length !batch < st.cfg.batch do
      batch := Queue.pop st.queue :: !batch
    done;
    process_batch st (List.rev !batch)
  done

(* ---- the event loop ---- *)

let read_chunk = Bytes.create 65536

let service_conn st conn =
  let n =
    try Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk)
    with Unix.Unix_error _ -> 0
  in
  if n = 0 then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end
  else begin
    Sproto.feed conn.reader read_chunk n;
    let rec frames () =
      match Sproto.next_frame conn.reader with
      | None -> ()
      | Some framed ->
          (match Sproto.request_of_frame ~src:conn.peer framed with
          | req -> admit st conn req
          | exception Failure msg ->
              (* Framing is intact (the length prefix delimited the bad
                 frame), so answer and keep the connection. *)
              error_reply st conn ~id:(-1) ~message:msg);
          if st.running then frames ()
      | exception Failure msg ->
          (* Oversized claim: the stream can no longer be framed. *)
          error_reply st conn ~id:(-1) ~message:msg;
          conn.alive <- false;
          (try Unix.close conn.fd with Unix.Unix_error _ -> ())
    in
    frames ()
  end

let listen_socket cfg =
  match cfg.addr with
  | Unix_sock path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let inet =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 64;
      fd

let run ?(on_ready = fun () -> ()) cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  let st =
    {
      cfg;
      listen_fd = listen_socket cfg;
      queue = Queue.create ();
      conns = [];
      running = true;
    }
  in
  cfg.log (Printf.sprintf "listening on %s" (addr_to_string cfg.addr));
  on_ready ();
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
      List.iter
        (fun c ->
          if c.alive then try Unix.close c.fd with Unix.Unix_error _ -> ())
        st.conns;
      match cfg.addr with
      | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
      | Tcp _ -> ())
    (fun () ->
      while st.running do
        st.conns <- List.filter (fun c -> c.alive) st.conns;
        let fds = st.listen_fd :: List.map (fun c -> c.fd) st.conns in
        let ready, _, _ =
          try Unix.select fds [] [] 0.5
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if List.mem st.listen_fd ready then begin
          match Unix.accept st.listen_fd with
          | fd, sockaddr ->
              let peer =
                match sockaddr with
                | Unix.ADDR_UNIX _ -> "client"
                | Unix.ADDR_INET (a, p) ->
                    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
              in
              Metrics.incr (Metrics.counter "serve.connections");
              st.conns <-
                {
                  fd;
                  peer;
                  reader =
                    Sproto.reader ~max_frame:cfg.max_frame ~src:peer ();
                  alive = true;
                }
                :: st.conns
          | exception Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun c -> if c.alive && List.mem c.fd ready then service_conn st c)
          st.conns;
        drain st
      done;
      (* Shutdown drains what was admitted before the Bye. *)
      drain st)
