(* The serve wire protocol.

   Every message — request or response — travels as one length-prefixed
   frame:

     [u32 LE total-length][Frame: magic "PSDSRV" | version | payload |
                           MD5 trailer]

   where the payload is the marshalled message value.  Reusing
   Obj.Frame means a corrupted, truncated or version-skewed message
   fails with exactly the same precise error taxonomy as a corrupted
   object file ("not a serve message (bad magic)", "serve message
   format version N, this build reads version M", "corrupt serve
   message (payload digest mismatch)") — and Marshal only ever runs on
   digest-verified bytes, so a hostile or damaged stream cannot
   segfault the decoder.  The length prefix is checked against
   [max_frame] *before* anything is buffered: an oversized claim is
   rejected at four bytes, not after swallowing it. *)

let magic = "PSDSRV"
let version = 1

(* Images for a whole population request fit comfortably; anything
   bigger than this is a protocol violation, not a workload. *)
let default_max_frame = 64 * 1024 * 1024

type build_req = {
  id : int;  (** echoed in the response, so pipelined clients can match *)
  workload : string;  (** {!Workloads.find} name *)
  config : string;  (** {!Config.of_spec} spec *)
  versions : int * int;  (** inclusive version (seed) range lo..hi *)
  want_images : bool;
      (** return the full framed images, not just their digests *)
}

type request =
  | Build of build_req
  | Stats of { id : int }
  | Shutdown of { id : int }

type variant = {
  version : int;
  digest : string;  (** hex MD5 of the variant's [.text] *)
  image : string option;  (** {!Link}-framed image bytes, on request *)
}

type built = {
  id : int;
  workload : string;
  config : string;  (** resolved {!Config.name}, not the raw spec *)
  variants : variant list;
  lowering_runs : int;
      (** isel runs this request triggered — 0 on a warm store *)
  store_hits : int;
  store_misses : int;
  queue_depth : int;  (** depth observed when the request was admitted *)
}

type stats = {
  id : int;
  requests : int64;
  built_variants : int64;
  shed : int64;
  errors : int64;
  shards : Store.shard_stats list;
  metrics_json : string;
}

type response =
  | Built of built
  | Stats_reply of stats
  | Shed of { id : int; reason : string }
  | Error_reply of { id : int; message : string }
  | Bye of { id : int }

let request_id = function
  | Build { id; _ } | Stats { id } | Shutdown { id } -> id

let response_id = function
  | Built { id; _ }
  | Stats_reply { id; _ }
  | Shed { id; _ }
  | Error_reply { id; _ }
  | Bye { id } ->
      id

(* ---- framing ---- *)

let u32_le n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (n land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.unsafe_to_string b

let u32_of s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let frame payload = Frame.to_string ~magic ~version ~payload

let encode value =
  let framed = frame (Marshal.to_string value []) in
  u32_le (String.length framed) ^ framed

let encode_request (r : request) = encode r
let encode_response (r : response) = encode r

let decode_frame ~what ~src framed : 'a =
  Marshal.from_string (Frame.of_string ~magic ~version ~what ~src framed) 0

let request_of_frame ~src framed : request =
  decode_frame ~what:"serve request" ~src framed

let response_of_frame ~src framed : response =
  decode_frame ~what:"serve response" ~src framed

(* ---- incremental reading (the daemon's select loop) ---- *)

type reader = {
  src : string;
  max_frame : int;
  buf : Buffer.t;
  mutable pos : int;  (* consumed prefix of [buf] *)
}

let reader ?(max_frame = default_max_frame) ~src () =
  { src; max_frame; buf = Buffer.create 4096; pos = 0 }

let feed t bytes n = Buffer.add_subbytes t.buf bytes 0 n

let compact t =
  if t.pos > 0 && t.pos = Buffer.length t.buf then begin
    Buffer.clear t.buf;
    t.pos <- 0
  end
  else if t.pos > 65536 then begin
    let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
    Buffer.clear t.buf;
    Buffer.add_string t.buf rest;
    t.pos <- 0
  end

(* The next complete frame's bytes, if the buffer holds one.  Raises
   [Failure] on an oversized length claim — the connection is poisoned
   and must be closed, since framing is lost. *)
let next_frame t =
  let available = Buffer.length t.buf - t.pos in
  if available < 4 then None
  else begin
    let head = Buffer.sub t.buf t.pos 4 in
    let len = u32_of head 0 in
    if len > t.max_frame then
      failwith
        (Printf.sprintf "%s: oversized serve frame (%d bytes > %d cap)" t.src
           len t.max_frame);
    if available < 4 + len then None
    else begin
      let framed = Buffer.sub t.buf (t.pos + 4) len in
      t.pos <- t.pos + 4 + len;
      compact t;
      Some framed
    end
  end

(* ---- blocking I/O (the client, and the daemon's writes) ---- *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let rec really_read fd b off len =
  if len > 0 then begin
    let n = Unix.read fd b off len in
    if n = 0 then failwith "unexpected EOF mid-frame";
    really_read fd b (off + n) (len - n)
  end

(* One whole frame off a blocking fd; [None] on a clean EOF at a frame
   boundary. *)
let read_frame ?(max_frame = default_max_frame) ~src fd =
  let head = Bytes.create 4 in
  match Unix.read fd head 0 1 with
  | 0 -> None
  | _ ->
      (try really_read fd head 1 3
       with Failure _ ->
         failwith (Printf.sprintf "%s: truncated serve frame header" src));
      let len = u32_of (Bytes.unsafe_to_string head) 0 in
      if len > max_frame then
        failwith
          (Printf.sprintf "%s: oversized serve frame (%d bytes > %d cap)" src
             len max_frame);
      let body = Bytes.create len in
      (try really_read fd body 0 len
       with Failure _ ->
         failwith (Printf.sprintf "%s: truncated serve frame" src));
      Some (Bytes.unsafe_to_string body)

(* ---- image payloads ---- *)

(* Variants travel as Link-framed images — byte-identical to what
   `minicc link -o` writes — so a client can dump a response payload
   straight to a file and run it. *)
let image_to_string = Link.to_bytes
let image_of_string ~src s = Link.of_bytes ~src s
