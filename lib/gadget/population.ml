type report = { population : int; at_least : (int * int) list }

(* The per-version half: which (offset, normalized bytes) pairs does this
   version contain?  The normalized sequence is keyed by its rendering,
   which is injective enough for machine instructions and avoids a
   polymorphic-compare hash of the AST.  Within one version, each pair
   counts once.  Pure data out, so the pool can run one version per
   task. *)
let section_keys ?params text =
  let gadgets = Finder.scan ?params text in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (g : Finder.t) ->
      let normalized = Survivor.normalize g.insns in
      if normalized <> [] then begin
        let key =
          (g.offset, String.concat ";" (List.map Insn.to_string normalized))
        in
        if not (Hashtbl.mem seen key) then Hashtbl.replace seen key ()
      end)
    gadgets;
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

(* The merge half: how many versions contain each pair? *)
let of_keys ~thresholds keyed_sections =
  let counts : (int * string, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun keys ->
      List.iter
        (fun key ->
          let old = Option.value (Hashtbl.find_opt counts key) ~default:0 in
          Hashtbl.replace counts key (old + 1))
        keys)
    keyed_sections;
  let at_least =
    List.map
      (fun k ->
        let n =
          Hashtbl.fold (fun _ c acc -> if c >= k then acc + 1 else acc) counts 0
        in
        (k, n))
      thresholds
  in
  { population = List.length keyed_sections; at_least }

let analyze ?params ?(jobs = Pool.Jobs 1) ~thresholds sections =
  let keyed =
    List.map
      (function
        | Pool.Done keys -> keys
        | o -> failwith ("Population.analyze: " ^ Pool.outcome_to_string o))
      (Pool.map ~jobs (fun text -> section_keys ?params text) sections)
  in
  of_keys ~thresholds keyed
