(** Population survival analysis — paper Table 3.

    An attacker content to compromise a {e subset} of targets looks for
    gadgets common to as many diversified versions as possible, ignoring
    the original binary.  The unit of agreement is the pair
    (offset, normalized instruction sequence): the same logical gadget
    displaced to different offsets in different versions counts once per
    offset, which is why the paper observes {e more} gadgets in "≥2 of
    25" than in the original. *)

type report = {
  population : int;  (** number of versions analyzed *)
  at_least : (int * int) list;
      (** (k, number of (offset, gadget) pairs present in ≥ k versions) *)
}

val section_keys : ?params:Finder.params -> string -> (int * string) list
(** One version's distinct (offset, normalized-sequence rendering) pairs,
    sorted — the per-version scan that {!analyze} fans out and
    {!of_keys} merges.  Plain data, so a {!Pool} task can ship it across
    a process boundary. *)

val of_keys : thresholds:int list -> (int * string) list list -> report
(** Merge per-version key sets: for each threshold [k], count the
    distinct pairs appearing in at least [k] of the versions. *)

val analyze :
  ?params:Finder.params ->
  ?jobs:Pool.jobs ->
  thresholds:int list ->
  string list ->
  report
(** [analyze ~thresholds sections] scans every version's [.text] and
    counts, for each threshold [k], the distinct (offset, normalized
    sequence) pairs appearing in at least [k] versions.  [jobs] (default
    serial) scans versions in parallel — the report is identical at any
    [-j].  Raises [Failure] if a parallel scan task dies.  Only for
    top-level use: inside an already-parallel grid (a pool task), keep
    the default — nested pools are rejected. *)
